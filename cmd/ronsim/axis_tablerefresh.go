// The tablerefresh axis sweeps how often routing tables are recomputed
// from current estimates — the route-dissemination latency of §3.1's
// probe→table loop, a design-space knob the fixed-axis engine never
// had.
//
// It is deliberately implemented entirely against the public
// repro/experiment package, as the proof of the axis redesign's payoff:
// adding a grid dimension is one Axis implementation plus one registry
// entry. The -tablerefresh flag below is derived from the registry, the
// sweep engine names/seeds/shards its cells generically, snapshots and
// version 3 manifests round-trip its values, and -resume, -extend, and
// -merge-only all work — with zero changes to the engine, the manifest
// code, or the flag plumbing.
package main

import (
	"fmt"
	"time"

	"repro/experiment"
)

// tableRefreshAxis sweeps Config.TableRefresh; the zero value keeps
// the dataset default (15 s) and positive intervals label cells
// "-t<interval>".
type tableRefreshAxis struct{ vals []experiment.AxisValue }

func parseTableRefresh(s string) (time.Duration, error) {
	if s == "0" {
		return 0, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("table-refresh interval %v must be >= 0", v)
	}
	return v, nil
}

func (a *tableRefreshAxis) Name() string                   { return "tablerefresh" }
func (a *tableRefreshAxis) Values() []experiment.AxisValue { return a.vals }

func (a *tableRefreshAxis) Apply(v experiment.AxisValue, cfg *experiment.Config) error {
	iv, err := parseTableRefresh(string(v))
	if err != nil {
		return fmt.Errorf("axis tablerefresh: bad value %q: %w", v, err)
	}
	if iv > 0 {
		cfg.TableRefresh = iv
	}
	return nil
}

func (a *tableRefreshAxis) Label(v experiment.AxisValue) string {
	iv, err := parseTableRefresh(string(v))
	if err != nil || iv == 0 {
		return ""
	}
	return "-t" + iv.String()
}

func init() {
	experiment.Register(experiment.AxisDef{
		Name:    "tablerefresh",
		Usage:   "sweep: comma-separated routing-table refresh intervals (route-dissemination latency; 0 = dataset default)",
		Default: "0",
		New: func(values []experiment.AxisValue) (experiment.Axis, error) {
			if len(values) == 0 {
				return nil, fmt.Errorf("axis tablerefresh: empty value list")
			}
			canon := make([]experiment.AxisValue, 0, len(values))
			seen := map[experiment.AxisValue]struct{}{}
			for _, v := range values {
				iv, err := parseTableRefresh(string(v))
				if err != nil {
					return nil, fmt.Errorf("axis tablerefresh: bad value %q: %w", v, err)
				}
				c := experiment.AxisValue(iv.String())
				if _, dup := seen[c]; dup {
					return nil, fmt.Errorf("axis tablerefresh: duplicate value %q", c)
				}
				seen[c] = struct{}{}
				canon = append(canon, c)
			}
			return &tableRefreshAxis{vals: canon}, nil
		},
	})
}

package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"repro/experiment"
)

// runWorkerMode joins the fleet at url: fetch the coordinator's grid
// manifest, re-expand it locally, and lease-compute-upload cells until
// the sweep drains. Ctrl-C stops cleanly; any cell mid-flight simply
// loses its lease and re-dispatches to another worker.
func runWorkerMode(url, name string) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("worker %s joining coordinator at %s\n", name, url)
	return experiment.RunWorker(ctx, url, name, func(format string, args ...any) {
		fmt.Printf(format, args...)
	})
}

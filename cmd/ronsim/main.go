// Command ronsim reproduces the paper's evaluation: it runs a simulated
// measurement campaign for any of the three datasets (Table 3) and emits
// every table and figure — Table 5/6/7 as text, Figures 2-5 as CDF series,
// and the Figure 6 design space from the §5.3 cost model.
//
// Usage:
//
//	ronsim -dataset ron2003 -days 2 -seed 1 -out results/
//	ronsim -all -days 1
//
// Sweep mode expands a grid of campaigns — datasets × profile overrides ×
// hysteresis settings × seed replicas — runs the cells over a worker
// pool, and merges each grid point's replicas into one set of tables:
//
//	ronsim -sweep -replicas 8 -parallel 0 -days 0.5 -out results/
//	ronsim -sweep -all -hysteresis 0,0.25 -lossscale 1,4 -replicas 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// allDatasets is what -all expands to, in both single-run and sweep mode.
var allDatasets = []core.Dataset{core.RON2003, core.RONwide, core.RONnarrow}

func main() {
	var (
		dataset = flag.String("dataset", "ron2003", "dataset to reproduce: ron2003, ronwide, ronnarrow")
		days    = flag.Float64("days", 2, "virtual campaign length in days")
		seed    = flag.Uint64("seed", 1, "simulation seed (sweep mode: base seed for per-cell derivation)")
		outDir  = flag.String("out", "", "directory for figure data files (omit to skip)")
		all     = flag.Bool("all", false, "run all three datasets plus the Figure 6 model")
		traceTo = flag.String("trace", "", "write §4.1 probe trace records to this file (sweep mode: directory of per-cell traces); analyze with ronreport")

		sweep      = flag.Bool("sweep", false, "run a multi-campaign sweep over a worker pool and merge replicas")
		replicas   = flag.Int("replicas", 1, "sweep: seed-varied replicates per grid point")
		parallel   = flag.Int("parallel", 0, "sweep: max concurrent cells (0 = GOMAXPROCS)")
		hysteresis = flag.String("hysteresis", "0", "sweep: comma-separated hysteresis margins for the grid")
		lossScale  = flag.String("lossscale", "1", "sweep: comma-separated profile LossScale overrides for the grid")
		edgeShare  = flag.String("edgeshare", "1", "sweep: comma-separated profile EdgeShare overrides for the grid")
	)
	flag.Parse()

	if *sweep {
		datasets := allDatasets
		if !*all {
			d, err := parseDataset(*dataset)
			if err != nil {
				fatal(err)
			}
			datasets = []core.Dataset{d}
		}
		if err := runSweep(sweepFlags{
			datasets:   datasets,
			days:       *days,
			seed:       *seed,
			replicas:   *replicas,
			parallel:   *parallel,
			hysteresis: *hysteresis,
			lossScale:  *lossScale,
			edgeShare:  *edgeShare,
			outDir:     *outDir,
			traceDir:   *traceTo,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *all {
		for _, d := range allDatasets {
			if err := runDataset(d, *days, *seed, *outDir, ""); err != nil {
				fatal(err)
			}
		}
		printFigure6(*outDir)
		return
	}
	d, err := parseDataset(*dataset)
	if err != nil {
		fatal(err)
	}
	if err := runDataset(d, *days, *seed, *outDir, *traceTo); err != nil {
		fatal(err)
	}
	if d == core.RON2003 {
		printFigure6(*outDir)
	}
}

func parseDataset(s string) (core.Dataset, error) {
	switch strings.ToLower(s) {
	case "ron2003":
		return core.RON2003, nil
	case "ronwide":
		return core.RONwide, nil
	case "ronnarrow":
		return core.RONnarrow, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want ron2003, ronwide, ronnarrow)", s)
	}
}

// parseFloatList parses a comma-separated list of floats ("1,4,8").
func parseFloatList(flagName, s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q: %w", flagName, part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flagName)
	}
	return out, nil
}

// parsePositiveFloatList is parseFloatList for knobs the substrate only
// honors when > 0 (netsim treats non-positive LossScale/EdgeShare as the
// calibrated default, which would silently turn a sweep axis into a
// mislabeled baseline).
func parsePositiveFloatList(flagName, s string) ([]float64, error) {
	out, err := parseFloatList(flagName, s)
	if err != nil {
		return nil, err
	}
	for _, v := range out {
		if v <= 0 {
			return nil, fmt.Errorf("-%s: value %g must be > 0", flagName, v)
		}
	}
	return out, nil
}

// profileVariants crosses LossScale × EdgeShare overrides into named
// profile variants. The (1,1) point is the calibrated default and keeps
// an empty name.
func profileVariants(lossScales, edgeShares []float64) []core.ProfileVariant {
	var out []core.ProfileVariant
	for _, ls := range lossScales {
		for _, es := range edgeShares {
			if ls == 1 && es == 1 {
				out = append(out, core.ProfileVariant{})
				continue
			}
			p := netsim.DefaultProfile()
			p.LossScale = ls
			p.EdgeShare = es
			out = append(out, core.ProfileVariant{
				Name:    fmt.Sprintf("ls%g-es%g", ls, es),
				Profile: p,
			})
		}
	}
	return out
}

type sweepFlags struct {
	datasets             []core.Dataset
	days                 float64
	seed                 uint64
	replicas, parallel   int
	hysteresis           string
	lossScale, edgeShare string
	outDir, traceDir     string
}

// runSweep expands, runs, and reports a sweep: per-cell progress lines as
// cells finish, one merged report per grid point, and — under -out —
// per-cell and merged output directories plus a sweep.json manifest that
// ronreport -sweep consumes.
func runSweep(f sweepFlags) error {
	hyst, err := parseFloatList("hysteresis", f.hysteresis)
	if err != nil {
		return err
	}
	ls, err := parsePositiveFloatList("lossscale", f.lossScale)
	if err != nil {
		return err
	}
	es, err := parsePositiveFloatList("edgeshare", f.edgeShare)
	if err != nil {
		return err
	}

	spec := core.SweepSpec{
		Datasets:   f.datasets,
		Days:       f.days,
		BaseSeed:   f.seed,
		Replicas:   f.replicas,
		Profiles:   profileVariants(ls, es),
		Hysteresis: hyst,
		Parallel:   f.parallel,
	}

	// Per-cell trace writers, installed serially via the Configure hook
	// and flushed after the run. Hook failures are stashed rather than
	// exiting, so already-opened writers still get closed.
	type cellTrace struct {
		file *os.File
		w    *trace.Writer
		path string
	}
	traces := map[int]*cellTrace{}
	var traceErr error
	closeTraces := func() error {
		var first error
		for _, ct := range traces {
			if err := ct.w.Flush(); err != nil && first == nil {
				first = err
			}
			if err := ct.file.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if f.traceDir != "" {
		if err := os.MkdirAll(f.traceDir, 0o755); err != nil {
			return err
		}
		spec.Configure = func(c core.Cell, cfg *core.Config) {
			if traceErr != nil {
				return
			}
			path := filepath.Join(f.traceDir, c.Name()+".trc")
			file, err := os.Create(path)
			if err != nil {
				traceErr = err
				return
			}
			w, err := trace.NewWriter(file)
			if err != nil {
				traceErr = err
				file.Close()
				return
			}
			traces[c.Index] = &cellTrace{file: file, w: w, path: path}
			cfg.TraceSink = func(r trace.Record) { _ = w.Append(r) }
		}
	}

	var total int
	done := 0
	spec.Progress = func(r core.CellResult) {
		done++
		status := fmt.Sprintf("wall %5.1fs", r.Wall.Seconds())
		if r.Err != nil {
			status = "FAILED: " + r.Err.Error()
		} else {
			status += fmt.Sprintf("  probes %d", r.Res.MeasureProbes)
		}
		fmt.Printf("[%3d/%3d] cell %-36s seed %-20d %s\n",
			done, total, r.Cell.Name(), r.Cell.Seed, status)
	}

	s, err := core.NewSweep(spec)
	if err != nil {
		closeTraces()
		return err
	}
	if traceErr != nil {
		closeTraces()
		return traceErr
	}
	total = len(s.Cells())
	fmt.Printf("=== sweep: %d cells (%.2f virtual days each), base seed %d ===\n",
		total, f.days, f.seed)

	res, err := s.Run()
	closeErr := closeTraces()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	fmt.Printf("\nsweep finished in %.1fs on %d workers\n\n",
		res.Wall.Seconds(), res.Parallel)

	for gi := range res.Groups {
		g := &res.Groups[gi]
		fmt.Printf("=== merged %s: %d replicas ===\n%s\n",
			g.Name(), len(g.Cells), g.Merged.Report())
	}

	if f.outDir != "" {
		for i := range res.Cells {
			c := &res.Cells[i]
			dir := filepath.Join(f.outDir, "cells", c.Cell.Name())
			if err := writeFigures(dir, c.Cell.Dataset, c.Res); err != nil {
				return err
			}
		}
		for gi := range res.Groups {
			g := &res.Groups[gi]
			dir := filepath.Join(f.outDir, "merged", g.Name())
			if err := writeFigures(dir, g.Dataset, g.Merged); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d cell and %d merged output directories under %s\n",
			len(res.Cells), len(res.Groups), f.outDir)
	}

	// The manifest lands next to the figure output, or next to the
	// traces when -out was omitted, so ronreport -sweep always has a
	// directory to read.
	manifestDir := f.outDir
	if manifestDir == "" {
		manifestDir = f.traceDir
	}
	if manifestDir == "" {
		return nil
	}
	m := res.Manifest(func(c core.Cell) string {
		ct, ok := traces[c.Index]
		if !ok {
			return ""
		}
		return manifestTracePath(manifestDir, ct.path)
	})
	if err := m.Write(manifestDir); err != nil {
		return err
	}
	fmt.Printf("wrote manifest %s\n", filepath.Join(manifestDir, core.ManifestName))
	return nil
}

// manifestTracePath stores a trace file's location relative to the
// manifest's directory when possible, else absolute — never relative to
// the process cwd, which ronreport would misresolve.
func manifestTracePath(manifestDir, tracePath string) string {
	dirAbs, err1 := filepath.Abs(manifestDir)
	pathAbs, err2 := filepath.Abs(tracePath)
	if err1 != nil || err2 != nil {
		return tracePath
	}
	if rel, err := filepath.Rel(dirAbs, pathAbs); err == nil {
		return rel
	}
	return pathAbs
}

func runDataset(d core.Dataset, days float64, seed uint64, outDir, traceTo string) error {
	cfg := core.DefaultConfig(d, days)
	cfg.Seed = seed

	var traceW *trace.Writer
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW, err = trace.NewWriter(f)
		if err != nil {
			return err
		}
		cfg.TraceSink = func(r trace.Record) { _ = traceW.Append(r) }
	}

	start := time.Now()
	fmt.Printf("=== %s: simulating %.2f virtual days (seed %d) ===\n", d, cfg.Days, seed)
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("(wall time %.1fs)\n\n%s\n", time.Since(start).Seconds(), res.Report())

	// Figures as inline CDF overlays.
	names := res.Agg.Methods()
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 2: per-path long-term loss rate CDF (percent, direct path)",
		0, 7, 15, []string{"direct"}, []*analysis.CDF{res.Figure2(50)}))
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 3: 20-minute loss-rate CDF per method (fraction)",
		0, 1, 11, names, res.Figure3()))
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		fmt.Println(analysis.RenderCDFOverlay(
			"Figure 4: per-path conditional loss probability CDF (percent)",
			0, 100, 11, f4names, f4cdfs))
	}
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 5: per-path mean latency CDF, paths over 50 ms (ms)",
		0, 300, 13, names, res.Figure5()))

	if outDir != "" {
		if err := writeFigures(outDir, d, res); err != nil {
			return err
		}
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace records to %s\n", traceW.Count(), traceTo)
	}
	return nil
}

// writeFigures emits gnuplot-style data files, one per figure.
func writeFigures(dir string, d core.Dataset, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s", strings.ToLower(d.String()), name))
		return os.WriteFile(path, []byte(content), 0o644)
	}
	names := res.Agg.Methods()
	if err := write("fig2.dat", analysis.RenderCDF("per-path loss % CDF",
		res.Figure2(50).Grid(0, 7, 100))); err != nil {
		return err
	}
	if err := write("fig3.dat", analysis.RenderCDFOverlay("20-min loss CDF",
		0, 1, 101, names, res.Figure3())); err != nil {
		return err
	}
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		if err := write("fig4.dat", analysis.RenderCDFOverlay("per-path CLP CDF",
			0, 100, 101, f4names, f4cdfs)); err != nil {
			return err
		}
	}
	if err := write("fig5.dat", analysis.RenderCDFOverlay("latency CDF (>50ms paths)",
		0, 300, 121, names, res.Figure5())); err != nil {
		return err
	}
	if err := write("table5.txt",
		analysis.RenderTable5(res.Table5Rows(), res.LatencyLabel())); err != nil {
		return err
	}
	return write("table6.txt", analysis.RenderTable6(res.Agg.HighLossHours()))
}

// printFigure6 renders the §5.3 design space.
func printFigure6(outDir string) {
	p := costmodel.Defaults()
	ds, err := p.Space(21)
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 6: reactive vs redundant design space\n")
	fmt.Fprintf(&b, "# best-expected-path limit %.2f, independence limit %.2f\n",
		ds.ReactiveLimit, ds.RedundantLimit)
	fmt.Fprintf(&b, "%12s %12s %12s\n", "improvement", "reactive", "redundant")
	for i := range ds.Reactive {
		r, d := ds.Reactive[i].DataFraction, ds.Redundant[i].DataFraction
		fmt.Fprintf(&b, "%12.2f %12s %12s\n",
			ds.Reactive[i].Improvement, frac(r), frac(d))
	}
	for _, target := range []float64{0.1, 0.2, 0.3, 0.45} {
		s, err := p.Recommend(target)
		if err == nil {
			fmt.Fprintf(&b, "recommendation at %.0f%% improvement (16 kb/s flow): %s\n",
				target*100, s)
		}
	}
	fmt.Println(b.String())
	if outDir != "" {
		_ = os.WriteFile(filepath.Join(outDir, "fig6.dat"), []byte(b.String()), 0o644)
	}
}

func frac(v float64) string {
	if v < 0 {
		return "infeasible"
	}
	return fmt.Sprintf("%.4f", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronsim:", err)
	os.Exit(1)
}

// Command ronsim reproduces the paper's evaluation: it runs a simulated
// measurement campaign for any of the three datasets (Table 3) and emits
// every table and figure — Table 5/6/7 as text, Figures 2-5 as CDF series,
// and the Figure 6 design space from the §5.3 cost model.
//
// Usage:
//
//	ronsim -dataset ron2003 -days 2 -seed 1 -out results/
//	ronsim -all -days 1
//
// Sweep mode expands a grid of campaigns — datasets × grid axes × seed
// replicas — runs the cells over a worker pool, and merges each grid
// point's replicas into one set of tables. The axis flags (-hysteresis,
// -probeinterval, -losswindow, -tablerefresh, and the -lossscale ×
// -edgeshare profile crossing) are derived from the experiment
// package's axis registry; a newly registered axis gets its flag, cell
// naming, seeding, snapshots, and manifest round-trips for free:
//
//	ronsim -sweep -replicas 8 -parallel 0 -days 0.5 -out results/
//	ronsim -sweep -all -hysteresis 0,0.25 -lossscale 1,4 -replicas 4
//	ronsim -sweep -probeinterval 0,30s -losswindow 0,50 -out results/
//	ronsim -sweep -tablerefresh 0,1m -replicas 4 -out results/
//
// -workload runs a multi-path + FEC application workload alongside the
// probes: streams emit periodic frames whose FEC shards stripe across
// the k best link-disjoint overlay paths, and each report grows a
// delivered-frame table comparing multi-path+FEC against best-path
// delivery. The workload axes (-redundancy, -paths, -streams) sweep
// its shape, and any non-zero value of theirs enables the workload for
// that cell on its own:
//
//	ronsim -workload -dataset ron2003 -days 1
//	ronsim -sweep -workload -redundancy 0.25,1 -replicas 4 -out results/
//	ronsim -sweep -streams 4 -paths 1,2,3 -days 0.5
//
// Sweeps are distributable and resumable. -cells restricts a run to a
// shard of the grid (names, globs, indices, or index ranges); because
// per-cell seeds derive from grid coordinates, disjoint shards run on
// different machines combine — via -merge-only — into output
// byte-identical to a single-machine run. Every cell persists a
// checksummed snapshot of its aggregator state under -out, so -resume
// skips completed cells after a kill and -extend reuses them when the
// grid grows along new axes:
//
//	ronsim -sweep -replicas 4 -out results/ -cells '*-r00,*-r01'   # machine A
//	ronsim -sweep -replicas 4 -out results/ -cells '*-r02,*-r03'   # machine B
//	ronsim -sweep -replicas 4 -out results/ -merge-only            # coordinator
//	ronsim -sweep -replicas 4 -out results/ -resume                # after a kill
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/experiment"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// allDatasets is what -all expands to, in both single-run and sweep mode.
var allDatasets = []core.Dataset{core.RON2003, core.RONwide, core.RONnarrow}

func main() {
	var (
		dataset = flag.String("dataset", "ron2003", "dataset to reproduce: ron2003, ronwide, ronnarrow")
		days    = flag.Float64("days", 2, "virtual campaign length in days")
		seed    = flag.Uint64("seed", 1, "simulation seed (sweep mode: base seed for per-cell derivation)")
		outDir  = flag.String("out", "", "directory for figure data files (omit to skip)")
		all     = flag.Bool("all", false, "run all three datasets plus the Figure 6 model")
		traceTo = flag.String("trace", "", "write §4.1 probe trace records to this file (sweep mode: directory of per-cell traces); analyze with ronreport")

		workload = flag.Bool("workload", false, "run the multi-path + FEC application workload alongside probing (default streams/FEC shape; refine with -redundancy, -paths, -streams)")

		sweep     = flag.Bool("sweep", false, "run a multi-campaign sweep over a worker pool and merge replicas")
		replicas  = flag.Int("replicas", 1, "sweep: seed-varied replicates per grid point")
		parallel  = flag.Int("parallel", 0, "sweep: max concurrent cells (0 = GOMAXPROCS)")
		lossScale = flag.String("lossscale", "1", "sweep: comma-separated profile LossScale overrides for the grid")
		edgeShare = flag.String("edgeshare", "1", "sweep: comma-separated profile EdgeShare overrides for the grid")
		cells     = flag.String("cells", "", "sweep: run only this shard of the grid (comma-separated cell/group names, globs, indices, or index ranges)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		resume    = flag.Bool("resume", false, "sweep: reuse completed cell snapshots found under -out, running only the missing cells")
		extend    = flag.Bool("extend", false, "sweep: like -resume for a grown grid — reuse every already-computed cell, run only the new ones")
		mergeOnly = flag.Bool("merge-only", false, "sweep: skip running; rebuild merged/ under -out from completed cell snapshots and report missing grid points")

		serve      = flag.String("serve", "", "sweep: serve the grid to a worker fleet on this address (host:port; port 0 picks one) instead of computing cells in this process")
		workerURL  = flag.String("worker", "", "sweep: join the fleet served by the coordinator at this URL and work cells until the sweep drains")
		leaseTTL   = flag.Duration("lease", 0, "sweep -serve: cell lease lifetime; a worker silent this long forfeits its cell (default 1m)")
		workerName = flag.String("workername", "", "sweep -worker: name reported to the coordinator (default host:pid)")
	)
	// Every registered axis (standard and custom alike) derives its
	// value-list flag from the registry; the profile axis is driven by
	// the -lossscale/-edgeshare pair above instead. In single-campaign
	// mode an axis flag carries exactly one value and applies straight
	// to the config; in sweep mode value lists expand the grid.
	collectAxisFlags := experiment.RegisterAxisValueFlags(flag.CommandLine)
	flag.Parse()

	// Profiling hooks so perf work on the campaign engine starts from a
	// profile of the real binary, not a reconstruction: run any workload
	// with -cpuprofile/-memprofile and feed the output to `go tool
	// pprof`. stopProfiles is called on every exit path, including
	// fatal.
	if err := startProfiles(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if !*sweep {
		// Sweep-only flags must not silently degrade into a default
		// single campaign that pollutes a sweep output directory.
		for name, set := range map[string]bool{
			"-cells": *cells != "", "-resume": *resume,
			"-extend": *extend, "-merge-only": *mergeOnly,
			"-serve": *serve != "", "-worker": *workerURL != "",
		} {
			if set {
				fatal(fmt.Errorf("%s requires -sweep", name))
			}
		}
	}

	if *workerURL != "" {
		// Worker mode: the coordinator owns the grid, the outputs, and
		// the merge; this process only computes leased cells, so every
		// grid and output flag belongs on the -serve side.
		if err := runWorkerMode(*workerURL, *workerName); err != nil {
			fatal(err)
		}
		return
	}

	if *sweep {
		if *mergeOnly {
			if err := runMergeOnly(*outDir); err != nil {
				fatal(err)
			}
			return
		}
		datasets := allDatasets
		if !*all {
			d, err := core.ParseDataset(*dataset)
			if err != nil {
				fatal(err)
			}
			datasets = []core.Dataset{d}
		}
		axes, err := collectAxisFlags()
		if err != nil {
			fatal(err)
		}
		var axisOpts []experiment.Option
		for _, a := range axes {
			axisOpts = append(axisOpts, experiment.Axes(a))
		}
		if err := runSweep(sweepFlags{
			datasets:  datasets,
			days:      *days,
			seed:      *seed,
			replicas:  *replicas,
			parallel:  *parallel,
			lossScale: *lossScale,
			edgeShare: *edgeShare,
			axisOpts:  axisOpts,
			workload:  *workload,
			cells:     *cells,
			resume:    *resume || *extend,
			outDir:    *outDir,
			traceDir:  *traceTo,
			serve:     *serve,
			leaseTTL:  *leaseTTL,
		}); err != nil {
			fatal(err)
		}
		return
	}

	axes, err := collectAxisFlags()
	if err != nil {
		fatal(err)
	}
	if *all {
		for _, d := range allDatasets {
			if err := runDataset(d, *days, *seed, *outDir, "", *workload, axes); err != nil {
				fatal(err)
			}
		}
		printFigure6(*outDir)
		return
	}
	d, err := core.ParseDataset(*dataset)
	if err != nil {
		fatal(err)
	}
	if err := runDataset(d, *days, *seed, *outDir, *traceTo, *workload, axes); err != nil {
		fatal(err)
	}
	if d == core.RON2003 {
		printFigure6(*outDir)
	}
}

// parsePositiveFloat parses one profile-override value. The substrate
// only honors LossScale/EdgeShare when > 0 (netsim treats non-positive
// values as the calibrated default, which would silently turn a sweep
// axis into a mislabeled baseline), so non-positive values are errors.
func parsePositiveFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("value %g must be > 0", v)
	}
	return v, nil
}

// profileVariants crosses LossScale × EdgeShare overrides into named
// profile variants. The (1,1) point is the calibrated default and keeps
// an empty name.
func profileVariants(lossScales, edgeShares []float64) []core.ProfileVariant {
	var out []core.ProfileVariant
	for _, ls := range lossScales {
		for _, es := range edgeShares {
			if ls == 1 && es == 1 {
				out = append(out, core.ProfileVariant{})
				continue
			}
			p := netsim.DefaultProfile()
			p.LossScale = ls
			p.EdgeShare = es
			out = append(out, core.ProfileVariant{
				Name:    fmt.Sprintf("ls%g-es%g", ls, es),
				Profile: p,
			})
		}
	}
	return out
}

type sweepFlags struct {
	datasets             []core.Dataset
	days                 float64
	seed                 uint64
	replicas, parallel   int
	lossScale, edgeShare string
	// axisOpts carries the registry-derived axis flags (every axis
	// whose flag departed from its default), already parsed.
	axisOpts         []experiment.Option
	workload         bool
	cells            string
	resume           bool
	outDir, traceDir string
	// serve, when non-empty, runs the sweep as a fleet coordinator on
	// that address; leaseTTL is the cell lease lifetime it grants.
	// onServe, when non-nil, additionally receives the bound address —
	// how tests with port 0 join in-process workers.
	serve    string
	leaseTTL time.Duration
	onServe  func(addr string)
}

// runSweep builds an experiment from the flags and runs it: per-cell
// progress lines as cells finish, one merged report per complete grid
// point, and — under -out — per-cell and merged output directories, a
// checksummed snapshot of every finished cell, and a sweep.json
// manifest that -merge-only and ronreport -sweep consume. With -cells
// only the matching shard runs; with -resume/-extend, cells whose
// snapshot already exists are reused instead of recomputed.
func runSweep(f sweepFlags) error {
	ls, err := experiment.ParseList("lossscale", f.lossScale, parsePositiveFloat)
	if err != nil {
		return err
	}
	es, err := experiment.ParseList("edgeshare", f.edgeShare, parsePositiveFloat)
	if err != nil {
		return err
	}

	opts := []experiment.Option{
		experiment.Datasets(f.datasets...),
		experiment.Days(f.days),
		experiment.Seed(f.seed),
		experiment.Replicas(f.replicas),
		experiment.Parallel(f.parallel),
		experiment.Axes(experiment.ProfileAxis(profileVariants(ls, es)...)),
		experiment.Warn(func(format string, args ...any) { fmt.Printf(format, args...) }),
	}
	opts = append(opts, f.axisOpts...)
	if f.workload {
		opts = append(opts, experiment.Workload(experiment.DefaultWorkloadConfig()))
	}
	if f.cells != "" {
		opts = append(opts, experiment.Shard(f.cells))
	}
	if f.resume {
		if f.outDir == "" {
			return errors.New("-resume/-extend need -out: snapshots live under the output directory")
		}
		opts = append(opts, experiment.Resume(f.outDir))
	}
	if f.outDir != "" {
		opts = append(opts, experiment.Output(f.outDir))
	}
	if f.serve != "" {
		// Campaigns run on the workers, so per-cell trace sinks in this
		// process would never fire; refuse rather than silently write an
		// empty trace directory.
		if f.traceDir != "" {
			return errors.New("-trace is incompatible with -serve: traces are written where cells run; use -trace on a local sweep")
		}
		opts = append(opts,
			experiment.Remote(f.serve),
			experiment.RemoteLeaseTTL(f.leaseTTL),
			experiment.RemoteReady(func(addr string) {
				fmt.Printf("coordinator listening on %s\njoin workers with: ronsim -sweep -worker %s\n", addr, addr)
				if f.onServe != nil {
					f.onServe(addr)
				}
			}),
		)
	}

	// Per-cell trace writers. The Configure hook (serial, at expansion)
	// only records the intended path; the file is opened lazily on the
	// first record, so skipped shard cells and snapshot-reused cells
	// never clobber trace files written by an earlier or remote run.
	// Each sink touches only its own cellTrace, so no locking is needed
	// even though sinks run on worker goroutines.
	type cellTrace struct {
		path string
		file *os.File
		w    *trace.Writer
		err  error
	}
	traces := map[int]*cellTrace{}
	closeTraces := func() error {
		var first error
		for _, ct := range traces {
			if ct.err != nil && first == nil {
				first = fmt.Errorf("trace %s: %w", ct.path, ct.err)
			}
			if ct.w == nil {
				continue
			}
			if err := ct.w.Flush(); err != nil && first == nil {
				first = err
			}
			if err := ct.file.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if f.traceDir != "" {
		if err := os.MkdirAll(f.traceDir, 0o755); err != nil {
			return err
		}
		// Trace files open lazily (so shards and resumes never clobber
		// other runs' files), which would defer an unwritable-directory
		// error until after hours of compute; probe writability now.
		probe, err := os.CreateTemp(f.traceDir, ".writable*")
		if err != nil {
			return fmt.Errorf("-trace directory is not writable: %w", err)
		}
		probe.Close()
		os.Remove(probe.Name())
		opts = append(opts, experiment.Configure(func(c core.Cell, cfg *core.Config) {
			ct := &cellTrace{path: filepath.Join(f.traceDir, c.Name()+".trc")}
			traces[c.Index] = ct
			cfg.TraceSink = func(r trace.Record) {
				if ct.err != nil {
					return
				}
				if ct.w == nil {
					ct.file, ct.err = os.Create(ct.path)
					if ct.err != nil {
						return
					}
					ct.w, ct.err = trace.NewWriter(ct.file)
					if ct.err != nil {
						return
					}
				}
				ct.err = ct.w.Append(r)
			}
		}))
	}

	var total int
	done := 0
	opts = append(opts, experiment.Progress(func(r core.CellResult) {
		done++
		status := fmt.Sprintf("wall %5.1fs", r.Wall.Seconds())
		switch {
		case r.Err != nil:
			status = "FAILED: " + r.Err.Error()
		case r.Cached:
			status = fmt.Sprintf("reused snapshot  probes %d", r.Res.MeasureProbes)
		default:
			status += fmt.Sprintf("  probes %d", r.Res.MeasureProbes)
		}
		fmt.Printf("[%3d/%3d] cell %-36s seed %-20d %s\n",
			done, total, r.Cell.Name(), r.Cell.Seed, status)
	}))

	e, err := experiment.New(opts...)
	if err != nil {
		return err
	}
	gridCells, err := e.Cells()
	if err != nil {
		closeTraces()
		return err
	}
	total = 0
	for _, c := range gridCells {
		if e.Match(c) {
			total++
		}
	}
	shard := ""
	if f.cells != "" {
		shard = fmt.Sprintf(" [shard -cells %s: %d of %d]", e.Shard(), total, len(gridCells))
	}
	fmt.Printf("=== sweep: %d cells (%.2f virtual days each), base seed %d%s ===\n",
		total, f.days, f.seed, shard)

	res, err := e.Run()
	closeErr := closeTraces()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	fmt.Printf("\nsweep finished in %.1fs on %d workers (%d cells reused)\n\n",
		res.Wall.Seconds(), res.Parallel, res.Reused)

	incomplete := 0
	for gi := range res.Groups {
		g := &res.Groups[gi]
		if !g.Complete() {
			incomplete++
			var missing []string
			for _, c := range g.Cells {
				if c.Res == nil {
					missing = append(missing, c.Cell.Name())
				}
			}
			fmt.Printf("=== %s: incomplete (missing %s) ===\n",
				g.Name(), strings.Join(missing, ", "))
			continue
		}
		fmt.Printf("=== merged %s: %d replicas ===\n%s\n",
			g.Name(), len(g.Cells), g.Merged.Report())
	}
	if incomplete > 0 {
		fmt.Printf("%d grid points are incomplete; run the remaining shards against the same spec, combine the %s/ directories, then `ronsim -sweep -merge-only -out ...`\n",
			incomplete, core.CellsDirName)
	}

	if f.outDir != "" {
		wroteCells, wroteMerged := 0, 0
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Res == nil {
				continue
			}
			dir := filepath.Join(f.outDir, core.CellsDirName, c.Cell.Name())
			if err := writeFigures(dir, c.Cell.Dataset, c.Res); err != nil {
				return err
			}
			wroteCells++
		}
		for gi := range res.Groups {
			g := &res.Groups[gi]
			if !g.Complete() {
				continue
			}
			dir := filepath.Join(f.outDir, core.MergedDirName, g.Name())
			if err := writeFigures(dir, g.Dataset, g.Merged); err != nil {
				return err
			}
			wroteMerged++
		}
		fmt.Printf("wrote %d cell and %d merged output directories under %s\n",
			wroteCells, wroteMerged, f.outDir)
	}

	// The manifest lands next to the figure output, or next to the
	// traces when -out was omitted, so merge-only mode and ronreport
	// -sweep always have a directory to read. It covers the FULL grid,
	// so a shard's manifest lets the coordinator see what is missing.
	manifestDir := f.outDir
	if manifestDir == "" {
		manifestDir = f.traceDir
	}
	if manifestDir == "" {
		return nil
	}
	err = e.WriteManifest(res, manifestDir, func(c core.Cell) string {
		ct, ok := traces[c.Index]
		if !ok {
			return ""
		}
		// Record the trace when this run wrote it OR an earlier run
		// (another shard, a resumed sweep) left it on disk — the
		// rewritten manifest must not blank paths to intact files.
		if ct.w == nil {
			if _, err := os.Stat(ct.path); err != nil {
				return ""
			}
		}
		return manifestTracePath(manifestDir, ct.path)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote manifest %s\n", filepath.Join(manifestDir, core.ManifestName))
	return nil
}

// runMergeOnly rebuilds merged/ from whatever completed cell snapshots
// exist under dir — its own run's, a resumed run's, or shards copied in
// from other machines — and reports the grid points still missing
// cells. Rebuilt tables are byte-identical to a single-machine sweep
// because the snapshots round-trip aggregator state exactly and
// replicas merge in the same order. Custom-axis cells restore through
// the axis registry, so any axis this binary registers merges like a
// built-in one.
func runMergeOnly(dir string) error {
	if dir == "" {
		return errors.New("-merge-only needs -out pointing at a sweep output directory")
	}
	m, err := experiment.LoadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("merge-only: %d grid points in %s\n\n",
		len(m.Groups), filepath.Join(dir, core.ManifestName))
	merged := 0
	var incomplete []string
	var missingNames []string
	for gi := range m.Groups {
		g := &m.Groups[gi]
		var results []*core.Result
		var missing []string
		for ci, c := range g.Cells {
			snap, err := core.ReadManifestCellSnapshot(dir, c)
			if err != nil {
				// Name the cell by its grid coordinates, not just its
				// label: the coordinates are what an operator pastes back
				// into axis flags to re-run exactly the missing work.
				coords := g.CellCoords(ci)
				if errors.Is(err, fs.ErrNotExist) {
					missing = append(missing, fmt.Sprintf("%s [%s]", c.Name, coords))
				} else {
					missing = append(missing, fmt.Sprintf("%s [%s] (%v)", c.Name, coords, err))
				}
				missingNames = append(missingNames, c.Name)
				continue
			}
			res, err := snap.RestoreStandalone()
			if err != nil {
				missing = append(missing, fmt.Sprintf("%s [%s] (%v)", c.Name, g.CellCoords(ci), err))
				missingNames = append(missingNames, c.Name)
				continue
			}
			results = append(results, res)
		}
		if len(missing) > 0 {
			incomplete = append(incomplete, g.Name)
			fmt.Printf("=== %s: MISSING %d/%d cells ===\n", g.Name, len(missing), len(g.Cells))
			for _, ms := range missing {
				fmt.Printf("    %s\n", ms)
			}
			fmt.Println()
			continue
		}
		mergedRes, err := core.MergeResults(results)
		if err != nil {
			return fmt.Errorf("group %s: %w", g.Name, err)
		}
		d, err := core.ParseDataset(g.Dataset)
		if err != nil {
			return fmt.Errorf("group %s: %w", g.Name, err)
		}
		if err := writeFigures(filepath.Join(dir, core.MergedDirName, g.Name), d, mergedRes); err != nil {
			return err
		}
		merged++
		fmt.Printf("=== merged %s: %d replicas from snapshots ===\n%s\n",
			g.Name, len(results), mergedRes.Report())
	}
	fmt.Printf("merge-only: rebuilt %d/%d merged grid points under %s\n",
		merged, len(m.Groups), filepath.Join(dir, core.MergedDirName))
	if len(incomplete) > 0 {
		fmt.Printf("missing grid points: %s\n", strings.Join(incomplete, ", "))
		fmt.Printf("re-run exactly the missing cells with: -sweep ... -cells %s\n",
			strings.Join(missingNames, ","))
	}
	if merged == 0 {
		return errors.New("no grid point had a complete set of cell snapshots")
	}
	return nil
}

// manifestTracePath stores a trace file's location relative to the
// manifest's directory when possible, else absolute — never relative to
// the process cwd, which ronreport would misresolve.
func manifestTracePath(manifestDir, tracePath string) string {
	dirAbs, err1 := filepath.Abs(manifestDir)
	pathAbs, err2 := filepath.Abs(tracePath)
	if err1 != nil || err2 != nil {
		return tracePath
	}
	if rel, err := filepath.Rel(dirAbs, pathAbs); err == nil {
		return rel
	}
	return pathAbs
}

// applySingleAxes applies single-campaign axis flag values to cfg. A
// value list is a grid, and a grid needs -sweep — rejecting it here
// keeps a forgotten -sweep from silently running only part of one.
func applySingleAxes(cfg *core.Config, axes []core.Axis) error {
	for _, a := range axes {
		flagName := a.Name()
		if def, ok := core.LookupAxis(a.Name()); ok && def.Flag != "" {
			flagName = def.Flag
		}
		vals := a.Values()
		if len(vals) != 1 {
			return fmt.Errorf("-%s: a single campaign takes one value per axis; value lists need -sweep", flagName)
		}
		if err := a.Apply(vals[0], cfg); err != nil {
			return fmt.Errorf("-%s: %w", flagName, err)
		}
	}
	return nil
}

func runDataset(d core.Dataset, days float64, seed uint64, outDir, traceTo string, workload bool, axes []core.Axis) error {
	cfg := core.DefaultConfig(d, days)
	cfg.Seed = seed
	if workload {
		cfg.Workload = core.DefaultWorkloadConfig()
	}
	if err := applySingleAxes(&cfg, axes); err != nil {
		return err
	}

	var traceW *trace.Writer
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW, err = trace.NewWriter(f)
		if err != nil {
			return err
		}
		cfg.TraceSink = func(r trace.Record) { _ = traceW.Append(r) }
	}

	start := time.Now()
	fmt.Printf("=== %s: simulating %.2f virtual days (seed %d) ===\n", d, cfg.Days, seed)
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("(wall time %.1fs)\n\n%s\n", time.Since(start).Seconds(), res.Report())

	// Figures as inline CDF overlays.
	names := res.Agg.Methods()
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 2: per-path long-term loss rate CDF (percent, direct path)",
		0, 7, 15, []string{"direct"}, []*analysis.CDF{res.Figure2(50)}))
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 3: 20-minute loss-rate CDF per method (fraction)",
		0, 1, 11, names, res.Figure3()))
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		fmt.Println(analysis.RenderCDFOverlay(
			"Figure 4: per-path conditional loss probability CDF (percent)",
			0, 100, 11, f4names, f4cdfs))
	}
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 5: per-path mean latency CDF, paths over 50 ms (ms)",
		0, 300, 13, names, res.Figure5()))

	if outDir != "" {
		if err := writeFigures(outDir, d, res); err != nil {
			return err
		}
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace records to %s\n", traceW.Count(), traceTo)
	}
	return nil
}

// writeFigures emits gnuplot-style data files, one per figure.
func writeFigures(dir string, d core.Dataset, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s", strings.ToLower(d.String()), name))
		return os.WriteFile(path, []byte(content), 0o644)
	}
	names := res.Agg.Methods()
	if err := write("fig2.dat", analysis.RenderCDF("per-path loss % CDF",
		res.Figure2(50).Grid(0, 7, 100))); err != nil {
		return err
	}
	if err := write("fig3.dat", analysis.RenderCDFOverlay("20-min loss CDF",
		0, 1, 101, names, res.Figure3())); err != nil {
		return err
	}
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		if err := write("fig4.dat", analysis.RenderCDFOverlay("per-path CLP CDF",
			0, 100, 101, f4names, f4cdfs)); err != nil {
			return err
		}
	}
	if err := write("fig5.dat", analysis.RenderCDFOverlay("latency CDF (>50ms paths)",
		0, 300, 121, names, res.Figure5())); err != nil {
		return err
	}
	if err := write("table5.txt",
		analysis.RenderTable5(res.Table5Rows(), res.LatencyLabel())); err != nil {
		return err
	}
	if err := write("table6.txt", analysis.RenderTable6(res.Agg.HighLossHours())); err != nil {
		return err
	}
	// The workload and resilience tables only exist for cells that ran
	// those layers; writing them unconditionally would break
	// byte-identity between grids produced before and after these files
	// existed.
	if ws := res.Agg.Workload(); ws != nil && ws.HasData() {
		if err := write("workload.txt", analysis.RenderWorkloadTable(ws.Table())); err != nil {
			return err
		}
	}
	if rs := res.Agg.Resilience(); rs != nil && rs.HasData() {
		return write("resilience.txt", analysis.RenderResilienceTable(rs.Table()))
	}
	return nil
}

// printFigure6 renders the §5.3 design space.
func printFigure6(outDir string) {
	p := costmodel.Defaults()
	ds, err := p.Space(21)
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 6: reactive vs redundant design space\n")
	fmt.Fprintf(&b, "# best-expected-path limit %.2f, independence limit %.2f\n",
		ds.ReactiveLimit, ds.RedundantLimit)
	fmt.Fprintf(&b, "%12s %12s %12s\n", "improvement", "reactive", "redundant")
	for i := range ds.Reactive {
		r, d := ds.Reactive[i].DataFraction, ds.Redundant[i].DataFraction
		fmt.Fprintf(&b, "%12.2f %12s %12s\n",
			ds.Reactive[i].Improvement, frac(r), frac(d))
	}
	for _, target := range []float64{0.1, 0.2, 0.3, 0.45} {
		s, err := p.Recommend(target)
		if err == nil {
			fmt.Fprintf(&b, "recommendation at %.0f%% improvement (16 kb/s flow): %s\n",
				target*100, s)
		}
	}
	fmt.Println(b.String())
	if outDir != "" {
		_ = os.WriteFile(filepath.Join(outDir, "fig6.dat"), []byte(b.String()), 0o644)
	}
}

func frac(v float64) string {
	if v < 0 {
		return "infeasible"
	}
	return fmt.Sprintf("%.4f", v)
}

// profiles tracks the active profiling state for stopProfiles.
var profiles struct {
	cpu     *os.File
	memPath string
}

// startProfiles begins CPU profiling and records the heap-profile
// destination; either path may be empty.
func startProfiles(cpuPath, memPath string) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		profiles.cpu = f
	}
	profiles.memPath = memPath
	return nil
}

// stopProfiles flushes the CPU profile and writes the heap profile. It
// is safe to call more than once.
func stopProfiles() {
	if profiles.cpu != nil {
		pprof.StopCPUProfile()
		profiles.cpu.Close()
		profiles.cpu = nil
	}
	if profiles.memPath != "" {
		f, err := os.Create(profiles.memPath)
		if err == nil {
			runtime.GC() // up-to-date allocation statistics
			_ = pprof.WriteHeapProfile(f)
			f.Close()
		}
		profiles.memPath = ""
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "ronsim:", err)
	os.Exit(1)
}

// Command ronsim reproduces the paper's evaluation: it runs a simulated
// measurement campaign for any of the three datasets (Table 3) and emits
// every table and figure — Table 5/6/7 as text, Figures 2-5 as CDF series,
// and the Figure 6 design space from the §5.3 cost model.
//
// Usage:
//
//	ronsim -dataset ron2003 -days 2 -seed 1 -out results/
//	ronsim -all -days 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/trace"
)

func main() {
	var (
		dataset = flag.String("dataset", "ron2003", "dataset to reproduce: ron2003, ronwide, ronnarrow")
		days    = flag.Float64("days", 2, "virtual campaign length in days")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		outDir  = flag.String("out", "", "directory for figure data files (omit to skip)")
		all     = flag.Bool("all", false, "run all three datasets plus the Figure 6 model")
		traceTo = flag.String("trace", "", "write §4.1 probe trace records to this file (analyze with ronreport)")
	)
	flag.Parse()

	if *all {
		for _, d := range []core.Dataset{core.RON2003, core.RONwide, core.RONnarrow} {
			if err := runDataset(d, *days, *seed, *outDir, ""); err != nil {
				fatal(err)
			}
		}
		printFigure6(*outDir)
		return
	}
	d, err := parseDataset(*dataset)
	if err != nil {
		fatal(err)
	}
	if err := runDataset(d, *days, *seed, *outDir, *traceTo); err != nil {
		fatal(err)
	}
	if d == core.RON2003 {
		printFigure6(*outDir)
	}
}

func parseDataset(s string) (core.Dataset, error) {
	switch strings.ToLower(s) {
	case "ron2003":
		return core.RON2003, nil
	case "ronwide":
		return core.RONwide, nil
	case "ronnarrow":
		return core.RONnarrow, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want ron2003, ronwide, ronnarrow)", s)
	}
}

func runDataset(d core.Dataset, days float64, seed uint64, outDir, traceTo string) error {
	cfg := core.DefaultConfig(d, days)
	cfg.Seed = seed

	var traceW *trace.Writer
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW, err = trace.NewWriter(f)
		if err != nil {
			return err
		}
		cfg.TraceSink = func(r trace.Record) { _ = traceW.Append(r) }
	}

	start := time.Now()
	fmt.Printf("=== %s: simulating %.2f virtual days (seed %d) ===\n", d, cfg.Days, seed)
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("(wall time %.1fs)\n\n%s\n", time.Since(start).Seconds(), res.Report())

	// Figures as inline CDF overlays.
	names := res.Agg.Methods()
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 2: per-path long-term loss rate CDF (percent, direct path)",
		0, 7, 15, []string{"direct"}, []*analysis.CDF{res.Figure2(50)}))
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 3: 20-minute loss-rate CDF per method (fraction)",
		0, 1, 11, names, res.Figure3()))
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		fmt.Println(analysis.RenderCDFOverlay(
			"Figure 4: per-path conditional loss probability CDF (percent)",
			0, 100, 11, f4names, f4cdfs))
	}
	fmt.Println(analysis.RenderCDFOverlay(
		"Figure 5: per-path mean latency CDF, paths over 50 ms (ms)",
		0, 300, 13, names, res.Figure5()))

	if outDir != "" {
		if err := writeFigures(outDir, d, res); err != nil {
			return err
		}
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace records to %s\n", traceW.Count(), traceTo)
	}
	return nil
}

// writeFigures emits gnuplot-style data files, one per figure.
func writeFigures(dir string, d core.Dataset, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s", strings.ToLower(d.String()), name))
		return os.WriteFile(path, []byte(content), 0o644)
	}
	names := res.Agg.Methods()
	if err := write("fig2.dat", analysis.RenderCDF("per-path loss % CDF",
		res.Figure2(50).Grid(0, 7, 100))); err != nil {
		return err
	}
	if err := write("fig3.dat", analysis.RenderCDFOverlay("20-min loss CDF",
		0, 1, 101, names, res.Figure3())); err != nil {
		return err
	}
	f4names, f4cdfs := res.Figure4()
	if len(f4cdfs) > 0 {
		if err := write("fig4.dat", analysis.RenderCDFOverlay("per-path CLP CDF",
			0, 100, 101, f4names, f4cdfs)); err != nil {
			return err
		}
	}
	if err := write("fig5.dat", analysis.RenderCDFOverlay("latency CDF (>50ms paths)",
		0, 300, 121, names, res.Figure5())); err != nil {
		return err
	}
	if err := write("table5.txt",
		analysis.RenderTable5(res.Table5Rows(), res.LatencyLabel())); err != nil {
		return err
	}
	return write("table6.txt", analysis.RenderTable6(res.Agg.HighLossHours()))
}

// printFigure6 renders the §5.3 design space.
func printFigure6(outDir string) {
	p := costmodel.Defaults()
	ds, err := p.Space(21)
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 6: reactive vs redundant design space\n")
	fmt.Fprintf(&b, "# best-expected-path limit %.2f, independence limit %.2f\n",
		ds.ReactiveLimit, ds.RedundantLimit)
	fmt.Fprintf(&b, "%12s %12s %12s\n", "improvement", "reactive", "redundant")
	for i := range ds.Reactive {
		r, d := ds.Reactive[i].DataFraction, ds.Redundant[i].DataFraction
		fmt.Fprintf(&b, "%12.2f %12s %12s\n",
			ds.Reactive[i].Improvement, frac(r), frac(d))
	}
	for _, target := range []float64{0.1, 0.2, 0.3, 0.45} {
		s, err := p.Recommend(target)
		if err == nil {
			fmt.Fprintf(&b, "recommendation at %.0f%% improvement (16 kb/s flow): %s\n",
				target*100, s)
		}
	}
	fmt.Println(b.String())
	if outDir != "" {
		_ = os.WriteFile(filepath.Join(outDir, "fig6.dat"), []byte(b.String()), 0o644)
	}
}

func frac(v float64) string {
	if v < 0 {
		return "infeasible"
	}
	return fmt.Sprintf("%.4f", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronsim:", err)
	os.Exit(1)
}

package main

// The query engine over a sweep's columnar result store (-store):
// filter rows with axis predicates (-query), bucket them (-group-by),
// pull metric columns (-metrics) with group means and quantiles
// (-quantile), re-render any paper table from a stored row (-render;
// byte-identical to the files under merged/), and answer CDF-level
// questions the flat vector can't by drilling into the rows' backing
// snapshots (-drill). The flat path never opens a snapshot: a million-
// cell sweep answers "how does totlp move along the redundancy axis"
// from the segment file alone.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/resultstore"
)

// flagOut is where query output goes; tests capture it.
var flagOut io.Writer = os.Stdout

// storeQuery is the parsed -store flag family.
type storeQuery struct {
	root     string // sweep output dir (snapshot resolution base)
	segPath  string
	reindex  bool
	query    string
	groupBy  string
	metrics  string
	quantile float64 // <0 means unset
	render   string
	drill    string
}

// resolveStore maps the -store argument to (root dir, segment path): a
// directory means its results.seg, a file path is used verbatim.
func resolveStore(path string) (root, seg string) {
	if strings.HasSuffix(path, ".seg") {
		return filepath.Dir(path), path
	}
	return path, resultstore.SegmentPath(path)
}

func runStore(q storeQuery) error {
	if q.reindex {
		if err := reindexStore(q.root, q.segPath); err != nil {
			return err
		}
		if q.render == "" && q.metrics == "" && q.drill == "" && q.query == "" {
			return nil
		}
	}
	seg, err := resultstore.ReadSegment(q.segPath)
	if err != nil {
		return err
	}
	if seg.TruncatedBytes > 0 {
		fmt.Fprintf(flagOut, "(store: ignored %d bytes of torn tail)\n", seg.TruncatedBytes)
	}
	rows := seg.Unique()
	preds, err := resultstore.ParsePredicates(q.query)
	if err != nil {
		return err
	}
	sel := resultstore.Select(rows, preds)
	if len(sel) == 0 {
		return fmt.Errorf("query %q selected no rows (store has %d)", q.query, len(rows))
	}
	switch {
	case q.render != "":
		return renderRows(sel, q.render)
	case q.drill != "":
		return drillRows(q.root, sel, q.drill, q.quantile)
	case q.metrics != "":
		return printMetrics(sel, q)
	default:
		listRows(sel)
		return nil
	}
}

// renderRows re-renders a paper table from each selected row. A single
// selected row prints the bare table — byte-identical to the matching
// file under merged/ (or a cell's own output dir) — so CI can diff the
// two; multiple rows are separated by === name === headers.
func renderRows(sel []*resultstore.Row, kind string) error {
	for _, r := range sel {
		t, err := resultstore.RowTables(r)
		if err != nil {
			return fmt.Errorf("row %s: %w", r.Name, err)
		}
		var out string
		switch kind {
		case "overview", "table5":
			out = analysis.RenderTable5(t.Overview, t.LatencyLabel)
		case "table6", "hours":
			out = analysis.RenderTable6(t.Hours)
		case "workload":
			if t.Workload == nil {
				return fmt.Errorf("row %s carries no workload table", r.Name)
			}
			out = analysis.RenderWorkloadTable(t.Workload)
		case "resilience":
			if t.Resilience == nil {
				return fmt.Errorf("row %s carries no resilience table", r.Name)
			}
			out = analysis.RenderResilienceTable(t.Resilience)
		default:
			return fmt.Errorf("unknown -render kind %q (want overview, table6, workload, or resilience)", kind)
		}
		if len(sel) > 1 {
			fmt.Fprintf(flagOut, "=== %s ===\n", r.Name)
		}
		fmt.Fprint(flagOut, out)
	}
	return nil
}

// printMetrics prints metric columns: raw per-row values without
// -group-by, per-bucket count/mean (plus the requested quantile) with
// it.
func printMetrics(sel []*resultstore.Row, q storeQuery) error {
	cols := splitMethods(q.metrics)
	if q.groupBy == "" && q.quantile < 0 {
		for _, r := range sel {
			fmt.Fprintf(flagOut, "%s", r.Name)
			for _, col := range cols {
				if v, ok := resultstore.MetricValue(r, col); ok {
					fmt.Fprintf(flagOut, " %s=%g", col, v)
				} else {
					fmt.Fprintf(flagOut, " %s=-", col)
				}
			}
			fmt.Fprintln(flagOut)
		}
		return nil
	}
	for _, g := range resultstore.GroupBy(sel, q.groupBy) {
		key := "(all)"
		if q.groupBy != "" {
			key = q.groupBy + "=" + g.Key
		}
		for _, col := range cols {
			vals := resultstore.MetricValues(g.Rows, col)
			if len(vals) == 0 {
				fmt.Fprintf(flagOut, "%s %s n=0\n", key, col)
				continue
			}
			mean := 0.0
			for _, v := range vals {
				mean += v
			}
			mean /= float64(len(vals))
			fmt.Fprintf(flagOut, "%s %s n=%d mean=%g", key, col, len(vals), mean)
			if q.quantile >= 0 {
				fmt.Fprintf(flagOut, " p%g=%g", 100*q.quantile,
					resultstore.Quantile(vals, q.quantile))
			}
			fmt.Fprintln(flagOut)
		}
	}
	return nil
}

// listRows prints a one-line inventory per selected row.
func listRows(sel []*resultstore.Row) {
	for _, r := range sel {
		fmt.Fprintf(flagOut, "%-5s %-40s dataset=%s replicas=%d", r.Kind, r.Name, r.Dataset, r.Replicas)
		for _, kv := range r.Axes {
			fmt.Fprintf(flagOut, " %s=%s", kv.Key, kv.Value)
		}
		fmt.Fprintf(flagOut, " metrics=%d\n", len(r.Metrics))
	}
}

// drillRows answers a CDF-level question by restoring the selected cell
// rows' backing snapshots, merging them in name order, and reading the
// requested distribution off the merged aggregator. Specs:
//
//	pathloss           per-path long-term loss CDF, direct method (Fig 2)
//	win20:<method>     20-minute loss-rate CDF (Fig 3)
//	clp:<method>       per-path conditional loss CDF (Fig 4)
//	latency:<method>   per-path latency CDF over >50 ms paths (Fig 5)
func drillRows(root string, sel []*resultstore.Row, spec string, quantile float64) error {
	what, method, _ := strings.Cut(spec, ":")
	var cells []*resultstore.Row
	for _, r := range sel {
		if r.Kind == resultstore.KindCell && r.Snapshot != "" {
			cells = append(cells, r)
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("drill-down needs snapshot-backed cell rows; none selected (add kind=cell to the query)")
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
	results := make([]*core.Result, 0, len(cells))
	for _, r := range cells {
		snap, err := core.ReadCellSnapshot(filepath.Join(root, filepath.FromSlash(r.Snapshot)))
		if err != nil {
			return fmt.Errorf("cell %s: %w", r.Name, err)
		}
		res, err := snap.RestoreStandalone()
		if err != nil {
			return fmt.Errorf("cell %s: %w", r.Name, err)
		}
		results = append(results, res)
	}
	merged, err := core.MergeResults(results)
	if err != nil {
		return err
	}
	merged.Agg.Flush()
	var cdf *analysis.CDF
	switch what {
	case "pathloss":
		cdf = merged.Figure2(50)
	case "win20", "clp", "latency":
		m := merged.Agg.MethodIndex(method)
		if m < 0 {
			return fmt.Errorf("drill %s: unknown method %q (have: %s)",
				what, method, strings.Join(merged.Agg.Methods(), ", "))
		}
		switch what {
		case "win20":
			cdf = merged.Agg.WindowRateCDF(m)
		case "clp":
			cdf = merged.Agg.CLPByPathCDF(m)
		case "latency":
			cdf = merged.Agg.PathLatencyCDF(m, merged.DirectMethodIndex(), core.Figure5MinLatency)
		}
	default:
		return fmt.Errorf("unknown -drill spec %q (want pathloss, win20:<m>, clp:<m>, or latency:<m>)", spec)
	}
	fmt.Fprintf(flagOut, "drill %s over %d cells (%d samples)\n", spec, len(cells), cdf.N())
	if quantile >= 0 {
		fmt.Fprintf(flagOut, "p%g=%g\n", 100*quantile, cdf.Quantile(quantile))
		return nil
	}
	fmt.Fprintf(flagOut, "mean=%g p50=%g p90=%g p95=%g p99=%g max=%g\n",
		cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.95),
		cdf.Quantile(0.99), cdf.Max())
	return nil
}

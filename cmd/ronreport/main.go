// Command ronreport post-processes probe trace logs the way the paper's
// central monitoring machine did (§4.1): it merges per-node binary trace
// files, matches receives to sends within one hour, filters probes aimed
// at failed hosts (90 s send silence), and prints the Table 5 loss
// statistics for the methods found in the logs.
//
// Usage:
//
//	ronreport -hosts 30 -methods "loss,direct rand,lat loss" node0.trc node1.trc ...
//
// With -sweep, ronreport instead reads a ronsim sweep output directory
// (its sweep.json manifest) and combines each grid point's replicas via
// aggregator merging. Cells with persisted snapshots (written by every
// ronsim -sweep -out run) are restored exactly; cells with only trace
// files are rebuilt through the §4.1 matching pipeline. Grid points with
// neither — e.g. shards still running on another machine — are reported
// as missing:
//
//	ronsim -sweep -replicas 4 -out results/ -trace results/traces
//	ronreport -sweep results/
//
// With -store, ronreport is a query engine over the sweep's columnar
// result store (results.seg, written by every persisting sweep and
// backfillable with -reindex): -query filters rows by axis predicates,
// -group-by/-metrics/-quantile aggregate metric columns, -render
// re-renders any paper table byte-identically to the files under
// merged/, and -drill restores backing snapshots for CDF-level answers:
//
//	ronreport -store results/ -reindex
//	ronreport -store results/ -query "kind=group,scenario=outage" -render resilience
//	ronreport -store results/ -query kind=cell -group-by redundancy \
//	    -metrics wl.mp.losspct -quantile 0.95
//	ronreport -store results/ -query "kind=cell,group=ronnarrow" -drill "win20:direct"
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/experiment"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 30, "number of hosts in the mesh")
		methods  = flag.String("methods", "direct", "comma-separated method names, indexed by the Method field in the logs")
		sweepDir = flag.String("sweep", "", "read a ronsim sweep manifest (sweep.json) from this directory and combine its per-cell traces")
		store    = flag.String("store", "", "query the columnar result store of this sweep output directory (or a results.seg path)")
		reindex  = flag.Bool("reindex", false, "with -store: backfill the store from the directory's manifest and cell snapshots")
		query    = flag.String("query", "", "with -store: comma-separated field=glob predicates (kind, name, group, dataset, replica, seed, or any axis)")
		groupBy  = flag.String("group-by", "", "with -store -metrics: bucket selected rows by this field")
		metrics  = flag.String("metrics", "", "with -store: comma-separated metric columns to print")
		quantile = flag.Float64("quantile", -1, "with -store -metrics/-drill: also report this quantile (0..1)")
		render   = flag.String("render", "", "with -store: re-render a table from each selected row (overview, table6, workload, resilience)")
		drill    = flag.String("drill", "", "with -store: snapshot-backed CDF drill-down (pathloss, win20:<method>, clp:<method>, latency:<method>)")
	)
	flag.Parse()

	if *store != "" {
		q := storeQuery{
			reindex:  *reindex,
			query:    *query,
			groupBy:  *groupBy,
			metrics:  *metrics,
			quantile: *quantile,
			render:   *render,
			drill:    *drill,
		}
		q.root, q.segPath = resolveStore(*store)
		if err := runStore(q); err != nil {
			fatal(err)
		}
		return
	}

	if *sweepDir != "" {
		if err := reportSweep(*sweepDir); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ronreport: no trace files given")
		os.Exit(2)
	}
	names := splitMethods(*methods)
	agg, total, nlogs, matched, err := aggregateTraces(names, *hosts, flag.Args())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d records from %d logs\n", total, nlogs)
	fmt.Printf("matched %d probe observations\n\n", matched)
	printTables(agg)
}

// aggregateTraces reads trace files, matches sends to receives, and folds
// the observations into a fresh aggregator. Observations whose method id
// falls outside the provided name list are dropped (and reported).
func aggregateTraces(names []string, hosts int, paths []string) (agg *analysis.Aggregator, records, logs, matched int, err error) {
	logSets := make([][]trace.Record, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		recs, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("%s: %w", path, err)
		}
		logSets = append(logSets, recs)
		records += len(recs)
	}
	merged := trace.Merge(logSets...)
	obs := trace.Match(merged, hosts, trace.DefaultMatchOptions())

	agg = analysis.NewAggregator(names, hosts)
	skipped := 0
	for _, o := range obs {
		if o.Method >= len(names) {
			skipped++
			continue
		}
		agg.Observe(o)
	}
	agg.Flush()
	if skipped > 0 {
		fmt.Printf("(skipped %d observations with method ids beyond the %d known methods)\n",
			skipped, len(names))
	}
	return agg, records, len(logSets), len(obs), nil
}

// reportSweep rebuilds each sweep grid point from its replicate
// artifacts and prints the combined tables, mirroring what ronsim's
// in-process merge produced. Per cell it prefers the persisted snapshot
// (exact aggregator state), falls back to the trace file (rebuilt
// through send/receive matching), and otherwise counts the cell as
// missing — the normal state of a sharded sweep whose other shards have
// not been copied in yet.
func reportSweep(dir string) error {
	// LoadManifest reads any supported version — version 3's generic
	// axes and the legacy fixed-axis formats alike; the group and cell
	// records this tool consumes are normalized either way.
	m, err := experiment.LoadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("sweep manifest: %d grid points\n\n", len(m.Groups))
	reported := 0
	resolve := func(rel string) string {
		if filepath.IsAbs(rel) {
			return rel
		}
		return filepath.Join(dir, rel)
	}
	for _, g := range m.Groups {
		var combined *analysis.Aggregator
		fromSnap, fromTrace := 0, 0
		var missing []string
		merge := func(agg *analysis.Aggregator, name string) error {
			if combined == nil {
				combined = agg
				return nil
			}
			if err := combined.Merge(agg); err != nil {
				return fmt.Errorf("cell %s: %w", name, err)
			}
			return nil
		}
		for _, c := range g.Cells {
			if c.Snapshot != "" {
				snap, err := core.ReadManifestCellSnapshot(dir, c)
				switch {
				case err == nil:
					if err := merge(snap.Aggregator(), c.Name); err != nil {
						return err
					}
					fromSnap++
					continue
				case errors.Is(err, core.ErrSnapshotMismatch):
					// Debris from a rerun with another seed. The cell's
					// trace file shares that run's provenance (traces
					// carry no seed to check), so falling back would
					// silently mix grids; count the cell as missing.
					fmt.Printf("(cell %s: %v; not trusting its trace either)\n", c.Name, err)
					missing = append(missing, c.Name)
					continue
				case !errors.Is(err, fs.ErrNotExist):
					fmt.Printf("(cell %s: unreadable snapshot: %v; falling back to trace)\n",
						c.Name, err)
				}
			}
			if c.Trace != "" {
				agg, _, _, _, err := aggregateTraces(g.Methods, g.Hosts, []string{resolve(c.Trace)})
				if err != nil {
					return fmt.Errorf("cell %s: %w", c.Name, err)
				}
				if err := merge(agg, c.Name); err != nil {
					return err
				}
				fromTrace++
				continue
			}
			missing = append(missing, c.Name)
		}
		if combined == nil {
			fmt.Printf("=== %s: no snapshots or traces found (run the shard, or rerun ronsim -sweep with -out/-trace) ===\n\n", g.Name)
			continue
		}
		reported++
		src := fmt.Sprintf("%d from snapshots, %d from traces", fromSnap, fromTrace)
		if len(missing) > 0 {
			src += fmt.Sprintf("; MISSING %s", strings.Join(missing, ", "))
		}
		fmt.Printf("=== %s: %s, %d hosts, %d replicas combined (%s) ===\n",
			g.Name, g.Dataset, g.Hosts, fromSnap+fromTrace, src)
		printTables(combined)
	}
	if reported == 0 {
		return fmt.Errorf("no grid point had snapshots or traces under %s", dir)
	}
	return nil
}

func printTables(agg *analysis.Aggregator) {
	// Every caller hands over a flushed aggregator; Flush is idempotent,
	// so re-flushing here keeps the Table 6 precondition local.
	agg.Flush()
	fmt.Println(analysis.RenderTable5(agg.Table5(), ""))
	fmt.Println(analysis.RenderTable6(agg.HighLossHours()))
	// Workload-enabled cells carry delivered-frame accounting in their
	// snapshots; render it wherever it survived the merge.
	if ws := agg.Workload(); ws != nil && ws.HasData() {
		fmt.Println("Workload (delivered application frames)")
		fmt.Println(analysis.RenderWorkloadTable(ws.Table()))
	}
}

func splitMethods(s string) []string {
	out := experiment.SplitList(s)
	if len(out) == 0 {
		out = []string{"direct"}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronreport:", err)
	os.Exit(1)
}

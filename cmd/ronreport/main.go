// Command ronreport post-processes probe trace logs the way the paper's
// central monitoring machine did (§4.1): it merges per-node binary trace
// files, matches receives to sends within one hour, filters probes aimed
// at failed hosts (90 s send silence), and prints the Table 5 loss
// statistics for the methods found in the logs.
//
// Usage:
//
//	ronreport -hosts 30 -methods "loss,direct rand,lat loss" node0.trc node1.trc ...
//
// With -sweep, ronreport instead reads a ronsim sweep output directory
// (its sweep.json manifest plus the per-cell trace files recorded with
// ronsim -sweep -trace), rebuilds one aggregator per replicate, and
// combines each grid point's replicas via aggregator merging:
//
//	ronsim -sweep -replicas 4 -out results/ -trace results/traces
//	ronreport -sweep results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 30, "number of hosts in the mesh")
		methods  = flag.String("methods", "direct", "comma-separated method names, indexed by the Method field in the logs")
		sweepDir = flag.String("sweep", "", "read a ronsim sweep manifest (sweep.json) from this directory and combine its per-cell traces")
	)
	flag.Parse()

	if *sweepDir != "" {
		if err := reportSweep(*sweepDir); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ronreport: no trace files given")
		os.Exit(2)
	}
	names := splitMethods(*methods)
	agg, total, nlogs, matched, err := aggregateTraces(names, *hosts, flag.Args())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d records from %d logs\n", total, nlogs)
	fmt.Printf("matched %d probe observations\n\n", matched)
	printTables(agg)
}

// aggregateTraces reads trace files, matches sends to receives, and folds
// the observations into a fresh aggregator. Observations whose method id
// falls outside the provided name list are dropped (and reported).
func aggregateTraces(names []string, hosts int, paths []string) (agg *analysis.Aggregator, records, logs, matched int, err error) {
	logSets := make([][]trace.Record, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		recs, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("%s: %w", path, err)
		}
		logSets = append(logSets, recs)
		records += len(recs)
	}
	merged := trace.Merge(logSets...)
	obs := trace.Match(merged, hosts, trace.DefaultMatchOptions())

	agg = analysis.NewAggregator(names, hosts)
	skipped := 0
	for _, o := range obs {
		if o.Method >= len(names) {
			skipped++
			continue
		}
		agg.Observe(o)
	}
	agg.Flush()
	if skipped > 0 {
		fmt.Printf("(skipped %d observations with method ids beyond the %d known methods)\n",
			skipped, len(names))
	}
	return agg, records, len(logSets), len(obs), nil
}

// reportSweep rebuilds each sweep grid point from its replicate traces
// and prints the combined tables, mirroring what ronsim's in-process
// merge produced.
func reportSweep(dir string) error {
	m, err := core.ReadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("sweep manifest: %d grid points\n\n", len(m.Groups))
	reported := 0
	for _, g := range m.Groups {
		var combined *analysis.Aggregator
		cells := 0
		for _, c := range g.Cells {
			if c.Trace == "" {
				continue
			}
			path := c.Trace
			if !filepath.IsAbs(path) {
				path = filepath.Join(dir, path)
			}
			agg, _, _, _, err := aggregateTraces(g.Methods, g.Hosts, []string{path})
			if err != nil {
				return fmt.Errorf("cell %s: %w", c.Name, err)
			}
			cells++
			if combined == nil {
				combined = agg
				continue
			}
			if err := combined.Merge(agg); err != nil {
				return fmt.Errorf("cell %s: %w", c.Name, err)
			}
		}
		if combined == nil {
			fmt.Printf("=== %s: no traces recorded (rerun ronsim -sweep with -trace) ===\n\n", g.Name)
			continue
		}
		reported++
		fmt.Printf("=== %s: %s, %d hosts, %d traced replicas combined ===\n",
			g.Name, g.Dataset, g.Hosts, cells)
		printTables(combined)
	}
	if reported == 0 {
		return fmt.Errorf("no grid point had traces under %s", dir)
	}
	return nil
}

func printTables(agg *analysis.Aggregator) {
	// Every caller hands over a flushed aggregator; Flush is idempotent,
	// so re-flushing here keeps the Table 6 precondition local.
	agg.Flush()
	fmt.Println(analysis.RenderTable5(agg.Table5(), ""))
	fmt.Println(analysis.RenderTable6(agg.HighLossHours()))
}

func splitMethods(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{"direct"}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronreport:", err)
	os.Exit(1)
}

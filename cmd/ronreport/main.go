// Command ronreport post-processes probe trace logs the way the paper's
// central monitoring machine did (§4.1): it merges per-node binary trace
// files, matches receives to sends within one hour, filters probes aimed
// at failed hosts (90 s send silence), and prints the Table 5 loss
// statistics for the methods found in the logs.
//
// Usage:
//
//	ronreport -hosts 30 -methods "loss,direct rand,lat loss" node0.trc node1.trc ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/trace"
)

func main() {
	var (
		hosts   = flag.Int("hosts", 30, "number of hosts in the mesh")
		methods = flag.String("methods", "direct", "comma-separated method names, indexed by the Method field in the logs")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ronreport: no trace files given")
		os.Exit(2)
	}
	names := splitMethods(*methods)

	logs := make([][]trace.Record, 0, flag.NArg())
	var total int
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		recs, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		logs = append(logs, recs)
		total += len(recs)
	}
	merged := trace.Merge(logs...)
	fmt.Printf("merged %d records from %d logs\n", total, len(logs))

	obs := trace.Match(merged, *hosts, trace.DefaultMatchOptions())
	fmt.Printf("matched %d probe observations\n\n", len(obs))

	agg := analysis.NewAggregator(names, *hosts)
	skipped := 0
	for _, o := range obs {
		if o.Method >= len(names) {
			skipped++
			continue
		}
		agg.Observe(o)
	}
	agg.Flush()
	if skipped > 0 {
		fmt.Printf("(skipped %d observations with method ids beyond -methods)\n", skipped)
	}
	fmt.Println(analysis.RenderTable5(agg.Table5(), ""))
	fmt.Println(analysis.RenderTable6(agg.HighLossHours()))
}

func splitMethods(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{"direct"}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronreport:", err)
	os.Exit(1)
}

package main

// -reindex backfills a result store from a sweep output directory's
// persisted artifacts: every manifest cell with a restorable snapshot
// becomes a cell row, and every group whose replicas all restored
// becomes a merged group row — so pre-store sweep outputs (and
// -merge-only reruns, which bypass the live sinks) become queryable
// without recomputing anything. Restoration uses the snapshots' own
// recorded metadata (RestoreStandalone), not the manifest's grid
// re-expansion, so a store can be rebuilt by binaries that never
// registered the sweep's custom axes. Reindexing is idempotent: rows
// already in the segment (by identity) are skipped.

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"

	"repro/experiment"
	"repro/internal/core"
	"repro/internal/resultstore"
)

func reindexStore(root, segPath string) error {
	m, err := experiment.LoadManifest(root)
	if err != nil {
		return err
	}
	existing := map[string]bool{}
	if seg, err := resultstore.ReadSegment(segPath); err == nil {
		for i := range seg.Rows {
			existing[seg.Rows[i].Identity()] = true
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	st, err := resultstore.Open(segPath)
	if err != nil {
		return err
	}
	defer st.Close()

	cellsAdded, groupsAdded, missing := 0, 0, 0
	for _, g := range m.Groups {
		dataset := strings.ToLower(g.Dataset)
		results := make([]*core.Result, 0, len(g.Cells))
		complete := true
		for replica, c := range g.Cells {
			snap, err := core.ReadManifestCellSnapshot(root, c)
			if err != nil {
				if !errors.Is(err, fs.ErrNotExist) {
					fmt.Fprintf(flagOut, "(cell %s: skipping snapshot: %v)\n", c.Name, err)
				}
				complete = false
				missing++
				continue
			}
			res, err := snap.RestoreStandalone()
			if err != nil {
				fmt.Fprintf(flagOut, "(cell %s: snapshot does not restore: %v)\n", c.Name, err)
				complete = false
				missing++
				continue
			}
			results = append(results, res)
			if existing["cell:"+c.Name] {
				continue
			}
			rel := c.Snapshot
			if rel == "" {
				rel = core.CellSnapshotRelPath(c.Name)
			}
			row := core.StoreRow(resultstore.KindCell, c.Name, g.Name, dataset,
				g.Axes, replica, 1, c.Seed, rel, res)
			if err := st.Append(row); err != nil {
				return err
			}
			cellsAdded++
		}
		if !complete || len(results) == 0 || existing["group:"+g.Name] {
			continue
		}
		merged, err := core.MergeResults(results)
		if err != nil {
			return fmt.Errorf("group %s: %w", g.Name, err)
		}
		row := core.StoreRow(resultstore.KindGroup, g.Name, g.Name, dataset,
			g.Axes, -1, len(results), 0, "", merged)
		if err := st.Append(row); err != nil {
			return err
		}
		groupsAdded++
	}
	fmt.Fprintf(flagOut, "reindex: added %d cell and %d group rows (%d cells missing); store now holds %d rows\n",
		cellsAdded, groupsAdded, missing, st.Rows())
	return nil
}

// Command flakyproxy is a deliberately unreliable HTTP reverse proxy
// for chaos-testing the coordinator/worker fleet: it forwards requests
// to -target except every -fail-every'th one, which is answered with a
// 503 before reaching the backend — or, with -drop, has its connection
// severed mid-request with no response bytes at all, the way a crashed
// middlebox fails. A dead or restarting backend shows through as 502s.
// Workers pointed at the proxy must ride out all three with their
// transient-retry backoff, and the sweep output must still come out
// byte-identical to an unproxied run — which is exactly what the
// chaos-e2e CI job asserts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
)

// newHandler builds the fault-injecting proxy handler. Every
// failEvery'th request (0 disables injection) is failed before it
// reaches the backend: answered 503, or, in drop mode, its underlying
// connection hijacked and closed without writing a byte.
func newHandler(target *url.URL, failEvery int, drop bool, logf func(string, ...any)) http.Handler {
	rp := httputil.NewSingleHostReverseProxy(target)
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k := int64(failEvery); k > 0 && n.Add(1)%k == 0 {
			if drop {
				logf("flakyproxy: dropping connection for %s %s", r.Method, r.URL.Path)
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						conn.Close()
						return
					}
				}
				// No hijackable connection (e.g. HTTP/2): abort the
				// response instead, which still reaches the client as a
				// transport error rather than an HTTP status.
				panic(http.ErrAbortHandler)
			}
			logf("flakyproxy: injecting 503 for %s %s", r.Method, r.URL.Path)
			http.Error(w, "flakyproxy: injected fault", http.StatusServiceUnavailable)
			return
		}
		rp.ServeHTTP(w, r)
	})
}

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	target := flag.String("target", "", "backend to proxy to (host:port; scheme optional)")
	failEvery := flag.Int("fail-every", 3, "fail every Nth request instead of proxying it (0 disables fault injection)")
	drop := flag.Bool("drop", false, "sever the connection on injected faults instead of answering 503")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "flakyproxy: -target is required")
		os.Exit(2)
	}
	t := *target
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	u, err := url.Parse(t)
	if err != nil {
		log.Fatalf("flakyproxy: parsing -target: %v", err)
	}
	mode := "503"
	if *drop {
		mode = "dropped connection"
	}
	log.Printf("flakyproxy: %s -> %s, failing every %d requests (%s)", *listen, u, *failEvery, mode)
	log.Fatal(http.ListenAndServe(*listen, newHandler(u, *failEvery, *drop, log.Printf)))
}

// Command flakyproxy is a deliberately unreliable HTTP reverse proxy
// for chaos-testing the coordinator/worker fleet: it forwards requests
// to -target except every -fail-every'th one, which is answered with a
// 503 before reaching the backend. A dead or restarting backend shows
// through as 502s. Workers pointed at the proxy must ride out both
// with their transient-retry backoff, and the sweep output must still
// come out byte-identical to an unproxied run — which is exactly what
// the chaos-e2e CI job asserts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	target := flag.String("target", "", "backend to proxy to (host:port; scheme optional)")
	failEvery := flag.Int("fail-every", 3, "answer every Nth request with a 503 instead of proxying (0 disables fault injection)")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "flakyproxy: -target is required")
		os.Exit(2)
	}
	t := *target
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	u, err := url.Parse(t)
	if err != nil {
		log.Fatalf("flakyproxy: parsing -target: %v", err)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	var n atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k := int64(*failEvery); k > 0 && n.Add(1)%k == 0 {
			log.Printf("flakyproxy: injecting 503 for %s %s", r.Method, r.URL.Path)
			http.Error(w, "flakyproxy: injected fault", http.StatusServiceUnavailable)
			return
		}
		rp.ServeHTTP(w, r)
	})
	log.Printf("flakyproxy: %s -> %s, failing every %d requests", *listen, u, *failEvery)
	log.Fatal(http.ListenAndServe(*listen, handler))
}

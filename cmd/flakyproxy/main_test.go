package main

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// newProxy stands up a backend plus a flakyproxy in front of it and
// returns a client that cannot hide drop-mode faults behind Go's
// automatic idempotent-GET retry on reused connections.
func newProxy(t *testing.T, failEvery int, drop bool) (*httptest.Server, *http.Client) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(backend.Close)
	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(newHandler(u, failEvery, drop, t.Logf))
	t.Cleanup(proxy.Close)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	return proxy, client
}

func TestFailEvery503(t *testing.T) {
	proxy, client := newProxy(t, 3, false)
	var codes []int
	for i := 0; i < 6; i++ {
		resp, err := client.Get(proxy.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusOK && string(body) != "ok" {
			t.Fatalf("request %d: proxied body %q, want %q", i, body, "ok")
		}
	}
	want := []int{200, 200, 503, 200, 200, 503}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("status sequence %v, want %v", codes, want)
		}
	}
}

func TestDropSeversConnection(t *testing.T) {
	proxy, client := newProxy(t, 3, true)
	for i := 1; i <= 6; i++ {
		resp, err := client.Get(proxy.URL)
		if i%3 == 0 {
			// The dropped request must surface as a transport error —
			// no status, no body — not as any HTTP response.
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d: got HTTP %d, want severed connection", i, resp.StatusCode)
			}
			var uerr *url.Error
			if !errors.As(err, &uerr) {
				t.Fatalf("request %d: error %v, want a transport-level url.Error", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("request %d: got %d %q, want 200 ok", i, resp.StatusCode, body)
		}
	}
}

func TestZeroDisablesInjection(t *testing.T) {
	proxy, client := newProxy(t, 0, true)
	for i := 0; i < 5; i++ {
		resp, err := client.Get(proxy.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/overlay"
)

func writeRoster(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mesh.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoster(t *testing.T) {
	path := writeRoster(t, `
# comment line
0 10.0.0.1:4710
1 10.0.0.2:4710

2 host.example:4710
`)
	nodes, err := loadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("parsed %d nodes, want 3", len(nodes))
	}
	if nodes[1] != "10.0.0.2:4710" || nodes[2] != "host.example:4710" {
		t.Errorf("roster = %v", nodes)
	}
}

func TestLoadRosterErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"too few nodes", "0 a:1\n"},
		{"bad id", "x a:1\n1 b:2\n"},
		{"negative id", "-1 a:1\n1 b:2\n"},
		{"missing field", "0\n1 b:2\n"},
		{"extra field", "0 a:1 junk\n1 b:2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := loadRoster(writeRoster(t, c.content)); err == nil {
				t.Error("bad roster accepted")
			}
		})
	}
	if _, err := loadRoster("/nonexistent/roster"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]overlay.Policy{
		"direct":      overlay.PolicyDirect,
		"rand":        overlay.PolicyRand,
		"lat":         overlay.PolicyLat,
		"loss":        overlay.PolicyLoss,
		"direct rand": overlay.PolicyMesh,
		"mesh":        overlay.PolicyMesh,
		"lat loss":    overlay.PolicyLatLoss,
		" Direct ":    overlay.PolicyDirect,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

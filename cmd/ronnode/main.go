// Command ronnode runs one distributed overlay node over real UDP: it
// probes its peers RON-style, gossips link state, answers probes, relays
// one-hop overlay traffic, and periodically prints its routing table.
//
// A mesh is described by a roster file with one "id host:port" line per
// node:
//
//	0 10.0.0.1:4710
//	1 10.0.0.2:4710
//	2 10.0.0.3:4710
//
// Start each node with its own id:
//
//	ronnode -id 0 -roster mesh.txt -listen :4710
//
// Optional: -sendto periodically transmits a test stream to a peer under
// a chosen policy so forwarding and duplicate suppression can be observed
// end to end.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/overlay"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		id       = flag.Int("id", -1, "this node's id (must appear in the roster)")
		roster   = flag.String("roster", "", "roster file: one 'id host:port' per line")
		listen   = flag.String("listen", "", "UDP listen address (default: roster entry)")
		interval = flag.Duration("probe-interval", 15*time.Second, "per-peer probe interval (§3.1)")
		sendTo   = flag.Int("sendto", -1, "peer id to stream test packets to")
		policy   = flag.String("policy", "direct rand", "routing policy for -sendto: direct, rand, lat, loss, 'direct rand', 'lat loss'")
		rate     = flag.Duration("send-every", time.Second, "test stream packet interval")
	)
	flag.Parse()

	if *roster == "" || *id < 0 {
		fatal(fmt.Errorf("both -id and -roster are required"))
	}
	nodes, err := loadRoster(*roster)
	if err != nil {
		fatal(err)
	}
	self := wire.NodeID(*id)
	selfAddr, ok := nodes[self]
	if !ok {
		fatal(fmt.Errorf("id %d not in roster", *id))
	}
	if *listen == "" {
		*listen = selfAddr
	}

	tr, err := transport.NewUDP(self, *listen, nodes)
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	node, err := overlay.New(overlay.Config{
		ID:            self,
		MeshSize:      len(nodes),
		Transport:     tr,
		ProbeInterval: *interval,
		Seed:          time.Now().UnixNano(),
		OnReceive: func(r overlay.Receive) {
			tag := ""
			if r.Duplicate {
				tag = " (duplicate suppressed copy)"
			}
			fmt.Printf("recv %s stream=%d seq=%d copy=%d fwd=%v oneway=%v%s\n",
				r.Origin, r.StreamID, r.Seq, r.CopyIndex, r.Forwarded,
				r.OneWay.Round(100*time.Microsecond), tag)
		},
	})
	if err != nil {
		fatal(err)
	}
	node.Start()
	defer node.Close()
	fmt.Printf("ronnode %v up on %s, mesh of %d\n", self, *listen, len(nodes))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	ticker := time.NewTicker(10 * *interval)
	defer ticker.Stop()
	var sendTicker *time.Ticker
	var sendC <-chan time.Time
	if *sendTo >= 0 {
		sendTicker = time.NewTicker(*rate)
		defer sendTicker.Stop()
		sendC = sendTicker.C
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fatal(err)
	}

	var seq int
	for {
		select {
		case <-stop:
			fmt.Println("shutting down; final stats:", statsLine(node))
			return
		case <-ticker.C:
			printTable(node)
		case <-sendC:
			seq++
			payload := []byte(fmt.Sprintf("test packet %d", seq))
			if err := node.Send(wire.NodeID(*sendTo), 1, payload, pol); err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
			}
		}
	}
}

// loadRoster parses the roster file.
func loadRoster(path string) (map[wire.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[wire.NodeID]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("roster line %d: want 'id host:port'", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= int(wire.NoNode) {
			return nil, fmt.Errorf("roster line %d: bad id %q", line, fields[0])
		}
		out[wire.NodeID(id)] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("roster needs at least 2 nodes")
	}
	return out, nil
}

func parsePolicy(s string) (overlay.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "direct":
		return overlay.PolicyDirect, nil
	case "rand":
		return overlay.PolicyRand, nil
	case "lat":
		return overlay.PolicyLat, nil
	case "loss":
		return overlay.PolicyLoss, nil
	case "direct rand", "mesh":
		return overlay.PolicyMesh, nil
	case "lat loss":
		return overlay.PolicyLatLoss, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func printTable(n *overlay.Node) {
	fmt.Printf("routing table of %v at %s:\n", n.ID(), time.Now().Format(time.TimeOnly))
	for _, e := range n.RoutingTable() {
		fmt.Printf("  to %-4v loss-opt %-8v (est %.2f%%)  lat-opt %-8v (est %v)\n",
			e.Dst, e.Loss, e.Loss.Loss*100, e.Latency,
			e.Latency.Latency.Round(100*time.Microsecond))
	}
	fmt.Println("  " + statsLine(n))
}

func statsLine(n *overlay.Node) string {
	s := n.Stats()
	return fmt.Sprintf("probes=%d replies=%d lost=%d gossips=%d/%d data=%d/%d fwd=%d dups=%d",
		s.ProbesSent, s.ProbeReplies, s.ProbesLost, s.GossipsSent,
		s.GossipsReceived, s.DataSent, s.DataReceived, s.DataForwarded,
		s.DupsSuppressed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ronnode:", err)
	os.Exit(1)
}

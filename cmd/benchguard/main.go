// Command benchguard turns `go test -bench` output into the
// BENCH_campaign.json artifact and enforces the campaign engine's
// performance envelope against the committed baseline.
//
// Emit an artifact from a benchmark run:
//
//	go test -run '^$' -bench 'Campaign|Sweep/serial|...' -benchmem . | benchguard -emit bench.json
//
// Compare a fresh run against the repo's committed baseline (the "post"
// section of BENCH_campaign.json), failing the process on regression:
//
//	benchguard -baseline BENCH_campaign.json -input bench.json
//
// Two checks run per benchmark present in both files:
//
//   - allocs/op may not exceed the baseline beyond a hair of slack
//     (2% + 2 — macro benchmarks pick up ±1 alloc of scheduling noise
//     from the sweep worker pool). Benchmarks named by -zero-allocs
//     must report exactly 0 allocs/op: the hot paths that were made
//     allocation-free stay allocation-free.
//   - ns/op may not regress by more than -max-ns-regress (default 10%)
//     on the benchmarks named by -ns-checked. Wall-clock is
//     machine-dependent; the default set is the campaign hot paths,
//     and the threshold assumes the comparison runs on hardware
//     comparable to where the baseline was recorded (CI pairs this
//     with a benchstat report for context).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one benchmark's recorded numbers.
type Bench struct {
	NsPerOp      float64  `json:"ns_per_op"`
	BytesPerOp   *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp  *float64 `json:"allocs_per_op,omitempty"`
	ProbesPerSec *float64 `json:"probes_per_sec,omitempty"`
	CellsPerSec  *float64 `json:"cells_per_sec,omitempty"`
	ScalingEff   *float64 `json:"scaling_eff,omitempty"`
}

// File mirrors BENCH_campaign.json: benchmark sections keyed "pre" and
// "post", or a bare artifact with just "benchmarks".
type File struct {
	Schema     int              `json:"schema,omitempty"`
	Note       string           `json:"note,omitempty"`
	Pre        *Section         `json:"pre,omitempty"`
	Post       *Section         `json:"post,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks,omitempty"`
}

// Section is one recorded set of benchmark numbers.
type Section struct {
	Go         string           `json:"go,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkCampaign-8  54  19558482 ns/op  3274283 probes/sec  523024 B/op  2161 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseBenchOutput(r io.Reader) (map[string]Bench, error) {
	out := map[string]Bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		var b Bench
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "B/op":
				b.BytesPerOp = ptr(v)
			case "allocs/op":
				b.AllocsPerOp = ptr(v)
			case "probes/sec":
				b.ProbesPerSec = ptr(v)
			case "cells/sec":
				b.CellsPerSec = ptr(v)
			case "scaling-eff":
				b.ScalingEff = ptr(v)
			}
		}
		if !seen {
			continue
		}
		// -count>1 repeats each benchmark; keep the best (minimum
		// ns/op, maximum probes/sec) sample so scheduling noise in any
		// single run cannot trip the guard. Allocation counts are kept
		// at their minimum too: transient goroutine noise only ever
		// adds allocations.
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < b.NsPerOp {
				b.NsPerOp = prev.NsPerOp
			}
			b.BytesPerOp = minPtr(prev.BytesPerOp, b.BytesPerOp)
			b.AllocsPerOp = minPtr(prev.AllocsPerOp, b.AllocsPerOp)
			b.ProbesPerSec = maxPtr(prev.ProbesPerSec, b.ProbesPerSec)
			b.CellsPerSec = maxPtr(prev.CellsPerSec, b.CellsPerSec)
			b.ScalingEff = maxPtr(prev.ScalingEff, b.ScalingEff)
		}
		out[name] = b
	}
	return out, sc.Err()
}

func minPtr(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b == nil || *a < *b {
		return a
	}
	return b
}

func maxPtr(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b == nil || *a > *b {
		return a
	}
	return b
}

func ptr(v float64) *float64 { return &v }

func main() {
	var (
		emit     = flag.String("emit", "", "write the parsed benchmark numbers as a JSON artifact to this file ('-' for stdout) and exit")
		input    = flag.String("input", "-", "benchmark source: a `go test -bench` output file, or a benchguard JSON artifact (detected by leading '{'); '-' reads stdin")
		baseline = flag.String("baseline", "", "committed BENCH_campaign.json to compare against (its 'post' section)")
		maxNs    = flag.Float64("max-ns-regress", 0.10, "maximum fractional ns/op regression on the -ns-checked benchmarks")
		nsules   = flag.String("ns-checked", "BenchmarkSweep/serial,BenchmarkSweepTurnover,BenchmarkWorkloadCell,BenchmarkCampaign/paper,BenchmarkNetworkSendDirect,BenchmarkAggregatorObserve,BenchmarkSelectorSnapshot", "comma-separated benchmarks whose ns/op regressions fail the guard")
		speedups = flag.String("min-speedup", "BenchmarkCampaign/n=1024:BenchmarkCampaign/n=1024-lm:5", "comma-separated slow:fast:ratio triples: when both benchmarks appear in the input, slow's ns/op must be at least ratio times fast's (the committed curve records 10.8x at n=1024; the gate floor absorbs runner noise)")
		cal      = flag.String("calibrate", "BenchmarkComponentTransit", "benchmark used to normalize machine speed before ns/op checks ('' disables): baseline ns values are scaled by this benchmark's current/baseline ratio, clamped to [0.5,2], so the guard measures hot-path regressions relative to the machine's arithmetic speed instead of raw cross-machine deltas")
		zeroed   = flag.String("zero-allocs", "BenchmarkNetworkSendDirect,BenchmarkAggregatorObserve,BenchmarkSelectorSnapshot,BenchmarkSelectorBestLoss,BenchmarkComponentTransit,BenchmarkStoreAppend", "comma-separated benchmarks that must report exactly 0 allocs/op")
	)
	flag.Parse()

	current, err := readBenches(*input)
	if err != nil {
		fail("reading benchmarks: %v", err)
	}
	if len(current) == 0 {
		fail("no benchmark results found in %s", *input)
	}

	if *emit != "" {
		buf, err := json.MarshalIndent(File{Benchmarks: current}, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		buf = append(buf, '\n')
		if *emit == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*emit, buf, 0o644); err != nil {
			fail("%v", err)
		}
		if *baseline == "" {
			return
		}
	}

	if *baseline == "" {
		fail("nothing to do: pass -emit and/or -baseline")
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fail("reading baseline: %v", err)
	}

	toSet := func(csv string) map[string]bool {
		set := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			if n = strings.TrimSpace(n); n != "" {
				set[n] = true
			}
		}
		return set
	}
	nsChecked := toSet(*nsules)
	zeroAllocs := toSet(*zeroed)

	// Cross-machine normalization: ns/op baselines were recorded on one
	// machine; scale them by the calibration benchmark's observed ratio
	// so the 10% gate compares like with like.
	nsScale := 1.0
	if *cal != "" {
		if b, okB := base[*cal]; okB && b.NsPerOp > 0 {
			if c, okC := current[*cal]; okC && c.NsPerOp > 0 {
				nsScale = c.NsPerOp / b.NsPerOp
				if nsScale < 0.5 {
					nsScale = 0.5
				} else if nsScale > 2 {
					nsScale = 2
				}
				fmt.Printf("benchguard: machine calibration via %s: x%.3f\n", *cal, nsScale)
			}
		}
	}

	var failures []string
	compared := 0
	for name, want := range base {
		got, ok := current[name]
		if !ok {
			continue
		}
		compared++
		if zeroAllocs[name] && got.AllocsPerOp != nil && *got.AllocsPerOp != 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op = %.0f, must be 0 (allocation-free hot path)",
				name, *got.AllocsPerOp))
		} else if want.AllocsPerOp != nil && got.AllocsPerOp != nil {
			if limit := *want.AllocsPerOp*1.02 + 2; *got.AllocsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op regressed %.0f -> %.0f (allocation counts are machine-independent; this is a real regression)",
					name, *want.AllocsPerOp, *got.AllocsPerOp))
			}
		}
		if nsChecked[name] && name != *cal && want.NsPerOp > 0 {
			scaled := want.NsPerOp * nsScale
			if ratio := got.NsPerOp/scaled - 1; ratio > *maxNs {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op regressed %.0f -> %.0f (+%.1f%% vs calibrated baseline, limit %.0f%%)",
					name, scaled, got.NsPerOp, 100*ratio, 100**maxNs))
			}
		}
	}
	// Relative-speedup gates compare two benchmarks of the same run, so
	// they are machine-independent: the n-scaling claim (landmark probing
	// beats full-mesh at n=1024) is enforced wherever both curves ran.
	for _, spec := range strings.Split(*speedups, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			fail("bad -min-speedup entry %q (want slow:fast:ratio)", spec)
		}
		minRatio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fail("bad -min-speedup ratio in %q: %v", spec, err)
		}
		slow, okS := current[parts[0]]
		fast, okF := current[parts[1]]
		if !okS || !okF {
			continue // partial runs skip the gate
		}
		if fast.NsPerOp <= 0 || slow.NsPerOp/fast.NsPerOp < minRatio {
			failures = append(failures, fmt.Sprintf(
				"%s is only %.1fx slower than %s, want >= %.1fx (scaling-law regression)",
				parts[0], slow.NsPerOp/fast.NsPerOp, parts[1], minRatio))
		}
	}
	if compared == 0 {
		fail("no benchmark overlaps between current run and baseline")
	}
	fmt.Printf("benchguard: compared %d benchmarks against baseline\n", compared)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

// readBenches loads benchmark numbers from raw `go test -bench` output
// or from a benchguard/BENCH_campaign.json artifact.
func readBenches(path string) (map[string]Bench, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, err
		}
		if f.Benchmarks != nil {
			return f.Benchmarks, nil
		}
		if f.Post != nil {
			return f.Post.Benchmarks, nil
		}
		return nil, fmt.Errorf("%s: no benchmarks section", path)
	}
	return parseBenchOutput(strings.NewReader(string(data)))
}

// readBaseline loads the committed baseline's post-optimization section.
func readBaseline(path string) (map[string]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if f.Post != nil && len(f.Post.Benchmarks) > 0 {
		return f.Post.Benchmarks, nil
	}
	if len(f.Benchmarks) > 0 {
		return f.Benchmarks, nil
	}
	return nil, fmt.Errorf("%s: no post/benchmarks section to compare against", path)
}

func fail(format string, args ...any) {
	fmt.Fprintln(os.Stderr, "benchguard:", fmt.Sprintf(format, args...))
	os.Exit(1)
}
